/**
 * @file
 * CircuitAnalyzer implementation: majority fusion, XOR elision,
 * worst-case variance propagation, budget relaxation, levelization,
 * and the plan-driven (batched + async) evaluation paths.
 */

#include "workloads/circuit_analysis.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace strix {

namespace {

/** Phase amplitude of an encoding (distance of +-e to the decision
 * boundaries at 0 and 1/2; both are e for e <= 1/4). */
double
amplitude(WireEncoding enc)
{
    return enc == WireEncoding::Std8 ? 0.125 : 0.25;
}

/**
 * msg_space whose decoding margin equals the encoding's amplitude
 * (margin = 1/(2*space)), so budgets route through the existing
 * NoiseModel::decodableStddev API: +-1/8 margins behave like a
 * 4-message space, +-1/4 like a 2-message space.
 */
uint64_t
marginSpace(WireEncoding enc)
{
    return enc == WireEncoding::Std8 ? 4 : 2;
}

/** XOR/XNOR linear weight normalizing amplitude e to 1/4: 1/(4e). */
int32_t
xorWeight(WireEncoding enc)
{
    return enc == WireEncoding::Std8 ? 2 : 1;
}

bool
isXorShaped(GateOp op)
{
    return op == GateOp::Xor || op == GateOp::Xnor;
}

const char *
opName(GateOp op)
{
    switch (op) {
      case GateOp::And: return "And";
      case GateOp::Or: return "Or";
      case GateOp::Xor: return "Xor";
      case GateOp::Nand: return "Nand";
      case GateOp::Nor: return "Nor";
      case GateOp::Xnor: return "Xnor";
      case GateOp::AndNY: return "AndNY";
      case GateOp::AndYN: return "AndYN";
      case GateOp::Not: return "Not";
      case GateOp::Mux: return "Mux";
      case GateOp::Input: return "Input";
      case GateOp::Const: return "Const";
    }
    return "?";
}

/** Scratch state the analysis loop iterates on. */
struct Analysis
{
    // Fusion state: maj[o] = {x,y,z} for a fused Or; fused_away
    // marks its absorbed And operands.
    struct Maj
    {
        Wire x, y, z;
    };
    std::map<Wire, Maj> maj;
    std::vector<char> fused_away;

    std::vector<char> elided; // Xor/Xnor with the PBS deferred

    // Forward-pass results.
    std::vector<WireEncoding> enc;
    std::vector<double> var;
    std::vector<double> pbs_in; // variance at the PBS decision
    std::vector<uint32_t> level;
};

/** Effective operand wires of a node under the current fusion state
 * (empty for fused-away and valueless nodes). */
void
effectiveOperands(const Circuit &c, const Analysis &a, Wire w,
                  std::vector<Wire> &out)
{
    out.clear();
    if (a.fused_away[w])
        return;
    auto it = a.maj.find(w);
    if (it != a.maj.end()) {
        out = {it->second.x, it->second.y, it->second.z};
        return;
    }
    const Circuit::Node &n = c.node(w);
    switch (n.op) {
      case GateOp::Input:
      case GateOp::Const:
        break;
      case GateOp::Not:
        out = {n.a};
        break;
      case GateOp::Mux:
        out = {n.a, n.b, n.c};
        break;
      default:
        out = {n.a, n.b};
    }
}

/** Variance of sum_i w_i * x_i with duplicate wires accumulated
 * first (Xor(a, a) carries weight 4a, not two independent 2a draws),
 * then handed to NoiseModel::linearCombination. */
double
weightedVariance(const std::vector<std::pair<Wire, int32_t>> &terms,
                 const std::vector<double> &var)
{
    std::vector<Wire> wires;
    std::vector<int32_t> w;
    std::vector<double> v;
    for (const auto &[wire, weight] : terms) {
        auto it = std::find(wires.begin(), wires.end(), wire);
        if (it != wires.end()) {
            w[size_t(it - wires.begin())] += weight;
        } else {
            wires.push_back(wire);
            w.push_back(weight);
            v.push_back(var[wire]);
        }
    }
    return NoiseModel::linearCombination(w, v);
}

} // namespace

std::vector<uint32_t>
CircuitAnalyzer::naiveLevels(const Circuit &c)
{
    std::vector<uint32_t> lvl(c.numNodes(), 0);
    for (Wire i = 0; i < c.numNodes(); ++i) {
        const Circuit::Node &n = c.node(i);
        switch (n.op) {
          case GateOp::Input:
          case GateOp::Const:
            lvl[i] = 0;
            break;
          case GateOp::Not:
            lvl[i] = lvl[n.a]; // free, stays on its operand's level
            break;
          case GateOp::Mux:
            lvl[i] =
                std::max(lvl[n.a], std::max(lvl[n.b], lvl[n.c])) + 1;
            break;
          default:
            lvl[i] = std::max(lvl[n.a], lvl[n.b]) + 1;
        }
    }
    return lvl;
}

CircuitPlan
CircuitAnalyzer::plan() const
{
    const size_t nn = circuit_.numNodes();
    const NoiseModel model(params_);
    const double input_var = options_.input_variance >= 0
                                 ? options_.input_variance
                                 : model.freshLwe();
    const double z = options_.z;
    panicIfNot(z > 0.0, "CircuitAnalyzer: z budget must be positive");

    std::vector<char> is_output(nn, 0);
    for (Wire w : circuit_.outputs())
        is_output[w] = 1;

    Analysis a;
    a.fused_away.assign(nn, 0);
    a.elided.assign(nn, 0);

    // ---- Majority fusion: Or(And(x,y), And(Xor(x,y), z)). ----
    if (options_.fuse_majority) {
        std::vector<uint32_t> consumers(nn, 0);
        std::vector<Wire> ops;
        for (Wire i = 0; i < nn; ++i) {
            effectiveOperands(circuit_, a, i, ops);
            for (Wire o : ops)
                ++consumers[o];
        }
        for (Wire i = 0; i < nn; ++i) {
            const Circuit::Node &n = circuit_.node(i);
            if (n.op != GateOp::Or || n.a == n.b)
                continue;
            // Both operands: single-use non-output And gates.
            auto fusibleAnd = [&](Wire w) {
                return circuit_.node(w).op == GateOp::And &&
                       consumers[w] == 1 && !is_output[w];
            };
            if (!fusibleAnd(n.a) || !fusibleAnd(n.b))
                continue;
            // One And is gen = And(x,y); the other is
            // prop = And(t, z) with t = Xor over the same {x, y}.
            auto match = [&](Wire gen, Wire prop) -> bool {
                const Circuit::Node &g = circuit_.node(gen);
                const Circuit::Node &p = circuit_.node(prop);
                for (auto [t, zz] :
                     {std::pair<Wire, Wire>{p.a, p.b}, {p.b, p.a}}) {
                    const Circuit::Node &tn = circuit_.node(t);
                    if (tn.op != GateOp::Xor)
                        continue;
                    const bool same =
                        (tn.a == g.a && tn.b == g.b) ||
                        (tn.a == g.b && tn.b == g.a);
                    if (!same)
                        continue;
                    a.maj[i] = {g.a, g.b, zz};
                    a.fused_away[gen] = 1;
                    a.fused_away[prop] = 1;
                    return true;
                }
                return false;
            };
            if (!match(n.a, n.b))
                match(n.b, n.a);
        }
    }

    // ---- Relaxation loop: elide greedily, un-elide / un-fuse until
    // every budget holds (or nothing is left to revert). ----
    CircuitPlan plan;
    plan.circuit_name_ = circuit_.name();
    plan.z_ = z;
    plan.naive_pbs_ = circuit_.pbsCount();

    std::vector<Wire> ops;
    std::vector<std::pair<Wire, int32_t>> terms;
    std::vector<Wire> pinned; // un-elided by the relaxation loop
    // CheapestSufficient trial machinery. A trial pins one candidate
    // from the violation cone and lets the next loop pass *be* the
    // simulation (same eligibility / forward-pass / budget code): an
    // empty violation list accepts the pin, otherwise the next
    // candidate is tried, and when no single pin suffices the greedy
    // fallback below takes over on the recomputed base state.
    std::deque<Wire> trial_cands;
    bool trialing = false;
    bool trials_exhausted = false;
    constexpr size_t kMaxTrials = 64;
    for (;;) {
        // Structural elision eligibility under the current fusion
        // state: every consumer takes wide wires (XOR-shaped, or a
        // NOT that itself only feeds such consumers); outputs decode
        // any amplitude by sign. Reverse-topological pass.
        std::vector<char> wide_ok(nn, 1);
        for (Wire i = nn; i-- > 0;) {
            effectiveOperands(circuit_, a, i, ops);
            const GateOp op = circuit_.node(i).op;
            for (Wire o : ops) {
                if (isXorShaped(op))
                    continue; // weight-1 wide operand is fine
                if (op == GateOp::Not) {
                    if (!wide_ok[i])
                        wide_ok[o] = 0;
                    continue;
                }
                wide_ok[o] = 0; // +-1/8 linear forms wrap on wide
            }
        }
        for (Wire i = 0; i < nn; ++i) {
            const bool eligible = options_.elide &&
                                  isXorShaped(circuit_.node(i).op) &&
                                  !a.fused_away[i] && wide_ok[i];
            if (!eligible)
                a.elided[i] = 0;
            else if (a.elided[i] == 0 && options_.elide)
                a.elided[i] = 1;
        }
        // Nodes the relaxation has pinned to Bootstrap stay pinned.
        for (Wire w : pinned)
            a.elided[w] = 0;

        // Forward pass: encoding, variance, level per wire.
        a.enc.assign(nn, WireEncoding::Std8);
        a.var.assign(nn, 0.0);
        a.pbs_in.assign(nn, 0.0);
        a.level.assign(nn, 0);
        for (Wire i = 0; i < nn; ++i) {
            if (a.fused_away[i])
                continue;
            const Circuit::Node &n = circuit_.node(i);
            effectiveOperands(circuit_, a, i, ops);
            uint32_t max_lvl = 0;
            for (Wire o : ops)
                max_lvl = std::max(max_lvl, a.level[o]);
            auto it = a.maj.find(i);
            if (it != a.maj.end()) {
                terms = {{it->second.x, 1},
                         {it->second.y, 1},
                         {it->second.z, 1}};
                a.pbs_in[i] =
                    weightedVariance(terms, a.var) + model.modSwitch();
                a.var[i] = model.pbsOutput();
                a.level[i] = max_lvl + 1;
                continue;
            }
            switch (n.op) {
              case GateOp::Input:
                a.var[i] = input_var;
                break;
              case GateOp::Const:
                a.var[i] = 0.0; // trivial ciphertext
                break;
              case GateOp::Not:
                a.enc[i] = a.enc[n.a];
                a.var[i] = a.var[n.a];
                a.level[i] = a.level[n.a];
                break;
              case GateOp::Xor:
              case GateOp::Xnor: {
                terms = {{n.a, xorWeight(a.enc[n.a])},
                         {n.b, xorWeight(a.enc[n.b])}};
                const double lin = weightedVariance(terms, a.var);
                if (a.elided[i]) {
                    a.enc[i] = WireEncoding::Wide4;
                    a.var[i] = lin;
                    a.level[i] = max_lvl;
                } else {
                    a.pbs_in[i] = lin + model.modSwitch();
                    a.var[i] = model.pbsOutput();
                    a.level[i] = max_lvl + 1;
                }
                break;
              }
              case GateOp::Mux: {
                // Two sign PBS (sel&hi, !sel&lo), each keyswitched,
                // summed with the +1/8 bias at dimension n.
                terms = {{n.a, 1}, {n.b, 1}};
                const double lin1 = weightedVariance(terms, a.var);
                terms = {{n.a, 1}, {n.c, 1}};
                const double lin2 = weightedVariance(terms, a.var);
                a.pbs_in[i] =
                    std::max(lin1, lin2) + model.modSwitch();
                a.var[i] = 2.0 * model.pbsOutput();
                a.level[i] = max_lvl + 1;
                break;
              }
              default: { // And/Or/Nand/Nor/AndNY/AndYN
                terms = {{n.a, 1}, {n.b, 1}};
                a.pbs_in[i] =
                    weightedVariance(terms, a.var) + model.modSwitch();
                a.var[i] = model.pbsOutput();
                a.level[i] = max_lvl + 1;
                break;
              }
            }
        }

        // Budget checks: every surviving PBS input and every primary
        // output must sit z sigmas inside its decoding margin.
        struct Violation
        {
            Wire wire;
            bool at_output;
            double stddev, budget, margin;
        };
        std::vector<Violation> violations;
        for (Wire i = 0; i < nn; ++i) {
            if (a.pbs_in[i] <= 0.0)
                continue;
            // Surviving XOR-shaped bootstraps decide at +-1/4, every
            // other linear form at the +-1/8 grid.
            const WireEncoding lin_enc =
                isXorShaped(circuit_.node(i).op) && !a.maj.count(i)
                    ? WireEncoding::Wide4
                    : WireEncoding::Std8;
            const double budget =
                NoiseModel::decodableStddev(marginSpace(lin_enc), z);
            const double sd = std::sqrt(a.pbs_in[i]);
            if (sd >= budget)
                violations.push_back(
                    {i, false, sd, budget, amplitude(lin_enc)});
        }
        for (Wire w : circuit_.outputs()) {
            const double budget =
                NoiseModel::decodableStddev(marginSpace(a.enc[w]), z);
            const double sd = std::sqrt(a.var[w]);
            if (sd >= budget)
                violations.push_back(
                    {w, true, sd, budget, amplitude(a.enc[w])});
        }
        if (trialing) {
            trialing = false;
            if (violations.empty())
                break; // the trial pin restored every budget: keep it
            pinned.pop_back(); // trial failed; back to the base pins
            if (!trial_cands.empty()) {
                pinned.push_back(trial_cands.front());
                trial_cands.pop_front();
                trialing = true;
                continue;
            }
            // No single pin suffices. Recompute the base state so the
            // greedy fallback reverts against honest numbers.
            trials_exhausted = true;
            continue;
        }
        if (violations.empty())
            break; // feasible

        // Revert the strongest noise source in the violation's
        // ancestor cone: an elided XOR first, then a fused majority.
        const Violation &v = violations.front();
        std::vector<char> in_cone(nn, 0);
        std::deque<Wire> queue{v.wire};
        in_cone[v.wire] = 1;
        while (!queue.empty()) {
            Wire cur = queue.front();
            queue.pop_front();
            effectiveOperands(circuit_, a, cur, ops);
            for (Wire o : ops)
                if (!in_cone[o]) {
                    in_cone[o] = 1;
                    queue.push_back(o);
                }
        }
        if (options_.unelide == UnelidePolicy::CheapestSufficient &&
            !trials_exhausted) {
            std::vector<Wire> cands;
            for (Wire i = 0; i < nn; ++i)
                if (in_cone[i] && a.elided[i])
                    cands.push_back(i);
            std::sort(cands.begin(), cands.end(),
                      [&](Wire l, Wire r) {
                          return a.var[l] != a.var[r]
                                     ? a.var[l] > a.var[r]
                                     : l < r;
                      });
            if (cands.size() > kMaxTrials)
                cands.resize(kMaxTrials);
            if (cands.size() > 1) {
                trial_cands.assign(cands.begin() + 1, cands.end());
                pinned.push_back(cands.front());
                trialing = true;
                continue;
            }
            // 0 or 1 candidate: the greedy revert below is already
            // the cheapest move.
        }
        trials_exhausted = false;
        Wire best = 0;
        double best_var = -1.0;
        for (Wire i = 0; i < nn; ++i)
            if (in_cone[i] && a.elided[i] && a.var[i] > best_var) {
                best = i;
                best_var = a.var[i];
            }
        if (best_var >= 0.0) {
            pinned.push_back(best);
            continue;
        }
        Wire unfuse = nn;
        for (Wire i = 0; i < nn; ++i)
            if (in_cone[i] && a.maj.count(i)) {
                unfuse = i;
                break;
            }
        if (unfuse < nn) {
            // Restore gen/prop; the eligibility pass above re-clamps
            // any elision that depended on this fusion.
            a.fused_away[circuit_.node(unfuse).a] = 0;
            a.fused_away[circuit_.node(unfuse).b] = 0;
            a.maj.erase(unfuse);
            continue;
        }

        // Nothing left to revert: the budget is infeasible even with
        // every gate bootstrapped. Report, do not under-bootstrap.
        plan.feasible_ = false;
        const size_t cap = 8;
        for (size_t vi = 0; vi < violations.size() && vi < cap; ++vi) {
            const Violation &bad = violations[vi];
            std::ostringstream os;
            os << plan.circuit_name_ << ":w" << bad.wire
               << ": [budget-infeasible] "
               << opName(circuit_.node(bad.wire).op)
               << (bad.at_output ? " output wire" : " PBS input")
               << " predicted stddev " << bad.stddev
               << " exceeds budget " << bad.budget << " (margin "
               << bad.margin << " at z=" << z << "); wire chain:";
            // Follow the dominant noise contributor to its origin.
            Wire cur = bad.wire;
            for (int hop = 0; hop < 16; ++hop) {
                os << "\n    " << (hop ? "-> " : "") << "w" << cur
                   << " (" << opName(circuit_.node(cur).op)
                   << ", level " << a.level[cur] << ", stddev "
                   << std::sqrt(a.var[cur]) << ")";
                effectiveOperands(circuit_, a, cur, ops);
                // Stop at inputs/consts and at bootstrap boundaries
                // (but chain *through* the violating node itself).
                if (ops.empty() || (hop > 0 && a.pbs_in[cur] > 0.0))
                    break;
                Wire next = ops.front();
                for (Wire o : ops)
                    if (a.var[o] > a.var[next])
                        next = o;
                if (next == cur)
                    break;
                cur = next;
            }
            plan.diagnostics_.push_back(os.str());
        }
        break;
    }

    // ---- Finalize the plan. ----
    plan.nodes_.resize(nn);
    for (Wire i = 0; i < nn; ++i) {
        CircuitPlan::Node &out = plan.nodes_[i];
        const Circuit::Node &n = circuit_.node(i);
        out.encoding = a.enc[i];
        out.level = a.level[i];
        out.variance = a.var[i];
        out.pbs_input_variance = a.pbs_in[i];
        if (a.fused_away[i]) {
            out.action = PlanAction::Fused;
            continue;
        }
        auto it = a.maj.find(i);
        if (it != a.maj.end()) {
            out.action = PlanAction::Bootstrap;
            out.majority = true;
            out.maj_x = it->second.x;
            out.maj_y = it->second.y;
            out.maj_z = it->second.z;
            out.pbs = 1;
            continue;
        }
        switch (n.op) {
          case GateOp::Input:
          case GateOp::Const:
            out.action = PlanAction::Wire;
            break;
          case GateOp::Not:
            out.action = PlanAction::Linear;
            break;
          case GateOp::Mux:
            out.action = PlanAction::Bootstrap;
            out.pbs = 2;
            break;
          default:
            out.action =
                a.elided[i] ? PlanAction::Linear : PlanAction::Bootstrap;
            out.pbs = a.elided[i] ? 0 : 1;
        }
    }
    for (Wire i = 0; i < nn; ++i) {
        if (plan.nodes_[i].pbs > 0) {
            plan.pbs_count_ += plan.nodes_[i].pbs;
            plan.depth_ = std::max(plan.depth_, plan.nodes_[i].level);
        }
        // Fused nodes report the level of the majority that absorbed
        // them (they are never computed).
        if (plan.nodes_[i].action == PlanAction::Fused) {
            for (const auto &[o, m] : a.maj)
                if (circuit_.node(o).a == i || circuit_.node(o).b == i)
                    plan.nodes_[i].level = plan.nodes_[o].level;
        }
    }
    return plan;
}

double
CircuitPlan::predictedStddev(Wire w) const
{
    panicIfNot(w < nodes_.size(), "CircuitPlan: wire out of range");
    return std::sqrt(nodes_[w].variance);
}

std::string
CircuitPlan::summary() const
{
    std::ostringstream os;
    os << circuit_name_ << ": " << pbs_count_ << "/" << naive_pbs_
       << " PBS (" << elidedPbs() << " elided, "
       << int(elisionRatio() * 1000.0 + 0.5) / 10.0 << "%), depth "
       << depth_ << ", z=" << z_
       << (feasible_ ? "" : ", INFEASIBLE");
    return os.str();
}

CircuitPlan
analyzeCircuit(const Circuit &circuit, const TfheParams &params,
               const AnalysisOptions &options)
{
    return CircuitAnalyzer(circuit, params, options).plan();
}

// ---------------------------------------------------------------------
// Plan-driven evaluation (declared in workloads/circuit.h; lives here
// so circuit.cpp stays free of plan internals).
// ---------------------------------------------------------------------

namespace {

/** mu = 1/8 constant test vector for the sign bootstrap (the same
 * LUT gates.cpp uses, so unelided plans stay bit-identical). */
TorusPolynomial
signTestVector(uint32_t big_n)
{
    TorusPolynomial tv(big_n);
    const Torus32 mu = encodeMessage(1, 8);
    for (uint32_t j = 0; j < big_n; ++j)
        tv[j] = mu;
    return tv;
}

void
addWeighted(LweCiphertext &acc, const LweCiphertext &x, int32_t w)
{
    LweCiphertext t = x;
    if (w < 0) {
        t.negate();
        w = -w;
    }
    if (w == 2)
        t.scalarMulAssign(2);
    acc.addAssign(t);
}

/**
 * The linear form each gate's sign bootstrap decides on -- weight-
 * and bias-identical to gates.cpp (integer arithmetic mod 2^32 is
 * order-independent, so results match bit for bit). Elided XOR/XNOR
 * wires reuse the same form directly as their output. @p lin2 is
 * filled only for MUX (its second PBS).
 */
LweCiphertext
linearForm(const Circuit &c, const CircuitPlan &plan, Wire w,
           const std::vector<LweCiphertext> &vals, uint32_t lwe_n,
           LweCiphertext *lin2 = nullptr)
{
    const Circuit::Node &n = c.node(w);
    const CircuitPlan::Node &p = plan.node(w);
    auto bias = [&](int mult, uint64_t space) {
        return LweCiphertext::trivial(lwe_n,
                                      encodeMessage(mult, space));
    };
    if (p.majority) {
        LweCiphertext lin = bias(0, 8); // zero bias: sign(x+y+z)
        addWeighted(lin, vals[p.maj_x], 1);
        addWeighted(lin, vals[p.maj_y], 1);
        addWeighted(lin, vals[p.maj_z], 1);
        return lin;
    }
    const int32_t wa = xorWeight(plan.node(n.a).encoding);
    const int32_t wb = xorWeight(plan.node(n.b).encoding);
    switch (n.op) {
      case GateOp::Xor: {
        LweCiphertext lin = bias(1, 4);
        addWeighted(lin, vals[n.a], wa);
        addWeighted(lin, vals[n.b], wb);
        return lin;
      }
      case GateOp::Xnor: {
        LweCiphertext lin = bias(-1, 4);
        addWeighted(lin, vals[n.a], -wa);
        addWeighted(lin, vals[n.b], -wb);
        return lin;
      }
      case GateOp::And: {
        LweCiphertext lin = bias(-1, 8);
        lin.addAssign(vals[n.a]);
        lin.addAssign(vals[n.b]);
        return lin;
      }
      case GateOp::Or: {
        LweCiphertext lin = bias(1, 8);
        lin.addAssign(vals[n.a]);
        lin.addAssign(vals[n.b]);
        return lin;
      }
      case GateOp::Nand: {
        LweCiphertext lin = bias(1, 8);
        lin.subAssign(vals[n.a]);
        lin.subAssign(vals[n.b]);
        return lin;
      }
      case GateOp::Nor: {
        LweCiphertext lin = bias(-1, 8);
        lin.subAssign(vals[n.a]);
        lin.subAssign(vals[n.b]);
        return lin;
      }
      case GateOp::AndNY: {
        LweCiphertext lin = bias(-1, 8);
        lin.subAssign(vals[n.a]);
        lin.addAssign(vals[n.b]);
        return lin;
      }
      case GateOp::AndYN: {
        LweCiphertext lin = bias(-1, 8);
        lin.addAssign(vals[n.a]);
        lin.subAssign(vals[n.b]);
        return lin;
      }
      case GateOp::Mux: {
        LweCiphertext lin1 = bias(-1, 8);
        lin1.addAssign(vals[n.a]);
        lin1.addAssign(vals[n.b]);
        panicIfNot(lin2 != nullptr, "mux needs two linear forms");
        *lin2 = bias(-1, 8);
        lin2->subAssign(vals[n.a]);
        lin2->addAssign(vals[n.c]);
        return lin1;
      }
      default:
        panic("linearForm: node has no linear form");
    }
}

/**
 * Shared driver for the sync and async plan paths. @p sweep runs one
 * level's linear forms through a PBS+KS sweep and must return outputs
 * in order (sync: one bootstrapBatch call; async: a submitBootstrap
 * volley).
 */
template <typename Sweep>
std::vector<LweCiphertext>
evalPlanned(const Circuit &c, const CircuitPlan &plan,
            const ServerContext &server,
            const std::vector<LweCiphertext> &inputs, Sweep sweep)
{
    panicIfNot(plan.numNodes() == c.numNodes(),
               "evalEncrypted(plan): plan built for another circuit");
    panicIfNot(plan.feasible(),
               "evalEncrypted(plan): plan is infeasible for the "
               "requested noise budget -- see plan.diagnostics()");
    panicIfNot(inputs.size() == c.numInputs(),
               "evalEncrypted(plan): wrong input count");
    const uint32_t lwe_n = server.params().n;
    const Torus32 mu8 = encodeMessage(1, 8);

    // Group nodes by plan level; PBS nodes sweep first, then the
    // free nodes of the level evaluate in construction (= topological)
    // order, so linear chains may ride the same level as the
    // bootstraps they consume.
    std::vector<std::vector<Wire>> by_level(plan.depth() + 1);
    for (Wire i = 0; i < c.numNodes(); ++i)
        by_level[std::min<uint32_t>(plan.node(i).level, plan.depth())]
            .push_back(i);

    std::vector<LweCiphertext> vals(c.numNodes());
    size_t next_input = 0;
    for (uint32_t lvl = 0; lvl <= plan.depth(); ++lvl) {
        // (a) One batched sweep over the level's surviving PBS.
        std::vector<LweCiphertext> lins;
        std::vector<Wire> owners; // MUX contributes two entries
        for (Wire w : by_level[lvl]) {
            const CircuitPlan::Node &p = plan.node(w);
            if (p.action != PlanAction::Bootstrap || p.level != lvl)
                continue;
            if (c.node(w).op == GateOp::Mux) {
                LweCiphertext lin2;
                lins.push_back(
                    linearForm(c, plan, w, vals, lwe_n, &lin2));
                lins.push_back(std::move(lin2));
                owners.push_back(w);
                owners.push_back(w);
            } else {
                lins.push_back(linearForm(c, plan, w, vals, lwe_n));
                owners.push_back(w);
            }
        }
        if (!lins.empty()) {
            std::vector<LweCiphertext> outs = sweep(lins);
            for (size_t i = 0; i < owners.size(); ++i) {
                const Wire w = owners[i];
                if (c.node(w).op == GateOp::Mux) {
                    // u1 + u2 + 1/8 after keyswitching each half:
                    // decode-identical to gateMux (which keyswitches
                    // the sum once).
                    vals[w] = std::move(outs[i]);
                    vals[w].addAssign(outs[i + 1]);
                    vals[w].addAssign(
                        LweCiphertext::trivial(lwe_n, mu8));
                    ++i; // consumed the pair
                } else {
                    vals[w] = std::move(outs[i]);
                }
            }
        }
        // (b) Free nodes of the level.
        for (Wire w : by_level[lvl]) {
            const CircuitPlan::Node &p = plan.node(w);
            const Circuit::Node &n = c.node(w);
            switch (p.action) {
              case PlanAction::Wire:
                vals[w] = n.op == GateOp::Input
                              ? inputs[next_input++]
                              : LweCiphertext::trivial(
                                    lwe_n, n.const_value ? mu8
                                                         : 0u - mu8);
                break;
              case PlanAction::Linear:
                if (n.op == GateOp::Not) {
                    vals[w] = vals[n.a];
                    vals[w].negate();
                } else {
                    vals[w] = linearForm(c, plan, w, vals, lwe_n);
                }
                break;
              case PlanAction::Bootstrap:
              case PlanAction::Fused:
                break; // swept above / never computed
            }
        }
    }

    std::vector<LweCiphertext> out;
    out.reserve(c.numOutputs());
    for (Wire w : c.outputs())
        out.push_back(vals[w]);
    return out;
}

} // namespace

std::vector<LweCiphertext>
Circuit::evalEncrypted(const ServerContext &server,
                       const std::vector<LweCiphertext> &inputs,
                       const CircuitPlan &plan) const
{
    const TorusPolynomial tv = signTestVector(server.params().N);
    return evalPlanned(
        *this, plan, server, inputs,
        [&](const std::vector<LweCiphertext> &lins) {
            return server.bootstrapBatch(lins, tv);
        });
}

std::vector<LweCiphertext>
Circuit::evalEncryptedAsync(const ServerContext &server,
                            const std::vector<LweCiphertext> &inputs,
                            const CircuitPlan &plan) const
{
    const TorusPolynomial tv = signTestVector(server.params().N);
    return evalPlanned(
        *this, plan, server, inputs,
        [&](const std::vector<LweCiphertext> &lins) {
            std::vector<std::future<LweCiphertext>> futs;
            futs.reserve(lins.size());
            for (const LweCiphertext &lin : lins)
                futs.push_back(server.submitBootstrap(lin, tv));
            std::vector<LweCiphertext> outs;
            outs.reserve(futs.size());
            for (auto &f : futs)
                outs.push_back(f.get());
            return outs;
        });
}

WorkloadGraph
Circuit::toWorkloadGraph(const CircuitPlan &plan) const
{
    panicIfNot(plan.numNodes() == nodes_.size(),
               "toWorkloadGraph(plan): plan built for another circuit");
    WorkloadGraph g(name_);
    std::map<uint32_t, uint64_t> pbs_per_level;
    for (Wire i = 0; i < nodes_.size(); ++i)
        if (plan.node(i).pbs > 0)
            pbs_per_level[plan.node(i).level] += plan.node(i).pbs;
    for (const auto &[level, pbs] : pbs_per_level)
        g.addLayer({"level-" + std::to_string(level), pbs,
                    /*linear_macs=*/pbs * 2});
    return g;
}

} // namespace strix
