/**
 * @file
 * Radix-based encrypted integers on top of programmable
 * bootstrapping.
 *
 * An EncryptedUint is a little-endian vector of LWE digits, each
 * holding `digit_bits` bits in the centered LUT encoding with message
 * space 2^(digit_bits+1) (one headroom bit so a digit sum plus carry
 * stays in-window before the PBS splits it). Arithmetic is carry/
 * borrow propagation where every digit/carry extraction is one PBS --
 * exactly the n-bit-operation workloads the paper's XHEC baseline
 * accelerates.
 */

#ifndef STRIX_TFHE_INTEGER_H
#define STRIX_TFHE_INTEGER_H

#include <vector>

#include "tfhe/client_keyset.h"
#include "tfhe/encrypted_uint.h"
#include "tfhe/server_context.h"

namespace strix {

class TfheContext;

/**
 * Integer arithmetic engine bound to a ServerContext (public
 * evaluation keys only -- arithmetic provably cannot decrypt its
 * operands). Encryption and decryption are client-side operations and
 * take the ClientKeyset explicitly. digit_bits = 2 (base-4 digits) is
 * a good fit for 32-bit-torus parameter sets. A TfheContext facade
 * converts implicitly to the ServerContext argument.
 */
class IntegerOps
{
  public:
    explicit IntegerOps(const ServerContext &server,
                        uint32_t digit_bits = 2)
        : server_(server), digit_bits_(digit_bits)
    {
    }

    /**
     * The engine stores a reference: @p server must outlive it.
     * Binding a temporary -- a ServerContext directly, or a
     * TfheContext facade about to convert -- is rejected at compile
     * time (it would dangle after the full expression).
     */
    explicit IntegerOps(const ServerContext &&, uint32_t = 2) = delete;
    // Mentioning the deprecated facade in a deleted guard overload is
    // intentional -- keep it until the facade itself is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    explicit IntegerOps(TfheContext &&, uint32_t = 2) = delete;
#pragma GCC diagnostic pop

    uint32_t base() const { return 1u << digit_bits_; }
    /** Message space per digit PBS (one headroom bit). */
    uint64_t space() const { return uint64_t(base()) * 2; }

    /**
     * Encrypt @p value as @p num_digits base-2^digit_bits digits
     * under @p client's secret key (which must match the server's
     * evaluation keys).
     */
    EncryptedUint encrypt(const ClientKeyset &client, uint64_t value,
                          uint32_t num_digits) const;

    /** Decrypt to a uint64 (mod base^num_digits). */
    uint64_t decrypt(const ClientKeyset &client,
                     const EncryptedUint &x) const;

    /**
     * Homomorphic addition modulo base^n: ripple carry, two PBS per
     * digit (digit extraction + carry extraction).
     */
    EncryptedUint add(const EncryptedUint &a, const EncryptedUint &b) const;

    /** Homomorphic subtraction modulo base^n (borrow chain). */
    EncryptedUint sub(const EncryptedUint &a, const EncryptedUint &b) const;

    /** Add a small plaintext constant (same carry structure). */
    EncryptedUint addScalar(const EncryptedUint &a, uint64_t value) const;

    /** Encrypted equality test: returns an encrypted bit (0/1 digit). */
    LweCiphertext equal(const EncryptedUint &a,
                        const EncryptedUint &b) const;

    /** Encrypted unsigned less-than: a < b, as an encrypted bit. */
    LweCiphertext lessThan(const EncryptedUint &a,
                           const EncryptedUint &b) const;

    /** Decrypt an encrypted bit produced by equal()/lessThan(). */
    bool decryptBit(const ClientKeyset &client,
                    const LweCiphertext &ct) const
    {
        return client.decryptInt(ct, space()) != 0;
    }

    /** Encrypted NOT of a 0/1 digit (linear, no PBS). */
    LweCiphertext notBit(const LweCiphertext &b) const;

    /**
     * Oblivious digit select: sel ? hi : lo, where sel is a 0/1 digit
     * and hi/lo are digits in [0, base). Two PBS: the selector packs
     * into the headroom bit (v = sel*base + x), and each PBS keeps
     * its half of the packed domain.
     */
    LweCiphertext selectDigit(const LweCiphertext &sel,
                              const LweCiphertext &hi,
                              const LweCiphertext &lo) const;

    /** Trivial (noiseless) digit encryption, e.g. for constants. */
    LweCiphertext trivialDigit(uint64_t value) const;

    /**
     * PBS/KS cost of one n-digit addition (for scheduling on the
     * accelerator model): 2 PBS per digit.
     */
    static uint64_t addPbsCount(uint32_t num_digits)
    {
        return 2ull * num_digits;
    }

  private:
    /**
     * Recenter the sum of @p terms centered encodings: each carries a
     * +1/(4p) half-offset, so the sum of k has k-1 extra.
     */
    LweCiphertext recenter(LweCiphertext sum, uint32_t terms) const;

    const ServerContext &server_;
    uint32_t digit_bits_;
};

} // namespace strix

#endif // STRIX_TFHE_INTEGER_H
