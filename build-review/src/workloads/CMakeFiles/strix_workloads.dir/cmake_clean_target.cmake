file(REMOVE_RECURSE
  "libstrix_workloads.a"
)
