/**
 * @file
 * Deep-NN workload graph tests.
 */

#include <gtest/gtest.h>

#include "workloads/deepnn.h"

namespace strix {
namespace {

TEST(DeepNn, LayerCountMatchesDepth)
{
    for (uint32_t d : {3u, 20u, 50u, 100u}) {
        WorkloadGraph g = buildDeepNn(d);
        EXPECT_EQ(g.layers().size(), d) << "depth " << d;
    }
}

TEST(DeepNn, ConvLayerShape)
{
    WorkloadGraph g = buildDeepNn(20);
    const GraphLayer &conv = g.layers().front();
    // [1, 2, 21, 20] = 840 ReLU PBS, 10x11 kernel MACs each.
    EXPECT_EQ(conv.pbs_count, 840u);
    EXPECT_EQ(conv.linear_macs, 840u * 110);
}

TEST(DeepNn, HiddenLayersAre92Wide)
{
    WorkloadGraph g = buildDeepNn(20);
    for (size_t i = 1; i + 1 < g.layers().size(); ++i)
        EXPECT_EQ(g.layers()[i].pbs_count, 92u) << "layer " << i;
}

TEST(DeepNn, ClassifierHeadHasNoPbs)
{
    WorkloadGraph g = buildDeepNn(50);
    EXPECT_EQ(g.layers().back().pbs_count, 0u);
    EXPECT_EQ(g.layers().back().linear_macs, 92u * 10);
}

TEST(DeepNn, TotalPbsCounts)
{
    // 840 + (d-2)*92.
    EXPECT_EQ(deepNnPbsCount(20), 840u + 18 * 92);
    EXPECT_EQ(deepNnPbsCount(50), 840u + 48 * 92);
    EXPECT_EQ(deepNnPbsCount(100), 840u + 98 * 92);
}

TEST(DeepNn, FirstDenseConsumesConvOutputs)
{
    WorkloadGraph g = buildDeepNn(20);
    EXPECT_EQ(g.layers()[1].linear_macs, 840u * 92);
    EXPECT_EQ(g.layers()[2].linear_macs, 92u * 92);
}

TEST(DeepNn, RejectsTooShallow)
{
    EXPECT_DEATH(buildDeepNn(2), "depth");
}

TEST(DeepNn, GraphAccumulators)
{
    WorkloadGraph g = buildDeepNn(20);
    EXPECT_EQ(g.totalPbs(), deepNnPbsCount(20));
    EXPECT_GT(g.totalLinearMacs(), 0u);
    EXPECT_EQ(g.name(), "NN-20");
}

} // namespace
} // namespace strix
