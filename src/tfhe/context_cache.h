/**
 * @file
 * ContextCache: a keygen-amortizing service layer over the split API.
 *
 * Key generation dominates setup cost in every example and benchmark
 * (seconds at the paper parameter sets, vs microseconds for the work
 * a short session actually does). Since this library's keygen is
 * deterministic in (parameter set, seed), repeated sessions over the
 * same pair can share one keyset: getOrCreate() returns a cached
 * `shared_ptr<const EvalKeys>` and getOrCreateKeyset() the full
 * ClientKeyset it came from, generating each distinct (params, seed)
 * bundle exactly once no matter how many threads ask concurrently.
 *
 * The budgeted-LRU machinery itself lives one layer down in
 * EvalKeyCache (eval_key_cache.h), which holds only public EvalKeys
 * bundles; this facade adds the secret side, parking each generated
 * ClientKeyset as the entry's opaque owner handle. Memory accounting,
 * eviction, pinning, and CacheStats semantics are EvalKeyCache's: a
 * multi-tenant holder of one bundle per resident tenant is bounded by
 * key memory, not compute (a set-I bundle is ~48 MiB resident; see
 * EvalKeys::residentBytes), and under a setBudgetBytes() budget the
 * least-recently-used *unpinned* entries are evicted until it fits.
 * An entry is pinned while any external shared_ptr to its keyset or
 * EvalKeys bundle is alive -- eviction never invalidates outstanding
 * references.
 *
 * Trust model: the cache holds ClientKeysets -- secret keys -- so it
 * lives on the key-owning side (a client runtime, a test/bench
 * harness, a trusted session broker). An evaluation-only server never
 * needs it and must not include this header (lint-enforced): servers
 * receive EvalKeys bundles -- shared in-process or deserialized off
 * the wire -- and budget them with EvalKeyCache directly.
 */

#ifndef STRIX_TFHE_CONTEXT_CACHE_H
#define STRIX_TFHE_CONTEXT_CACHE_H

#include <memory>
#include <string>

#include "tfhe/client_keyset.h"
#include "tfhe/eval_key_cache.h"

namespace strix {

/** Process-wide cache of deterministic (params, seed) keysets. */
class ContextCache
{
  public:
    ContextCache() = default;

    ContextCache(const ContextCache &) = delete;
    ContextCache &operator=(const ContextCache &) = delete;

    /** The process-wide instance the examples and benches share. */
    static ContextCache &global();

    /**
     * The cached evaluation-key bundle for (params, seed), generating
     * it (exactly once, even under concurrent first touch) on a miss.
     * All callers get pointer-identical bundles, so any number of
     * ServerContexts built from them share one BSK/KSK copy.
     */
    std::shared_ptr<const EvalKeys> getOrCreate(const TfheParams &params,
                                                uint64_t seed);

    /**
     * The cached full keyset for (params, seed) -- secret keys
     * included, for callers that also encrypt/decrypt. Its
     * ->evalKeys() is the same pointer getOrCreate() returns.
     */
    std::shared_ptr<const ClientKeyset>
    getOrCreateKeyset(const TfheParams &params, uint64_t seed);

    /**
     * Adopt an externally-built bundle under the caller-chosen
     * @p params_key, so adopted keys participate in the same LRU
     * budgeting and CacheStats as keygen entries. Idempotent: an
     * already-resident key returns the *existing* bundle (a hit) and
     * drops @p bundle. Namespaced apart from keygen keys. This is
     * EvalKeyCache::getOrInsert on the shared engine -- a serving
     * daemon (which must not include this secret-side header) calls
     * that directly on its own EvalKeyCache instance.
     */
    std::shared_ptr<const EvalKeys>
    getOrInsert(const std::string &params_key,
                std::shared_ptr<const EvalKeys> bundle)
    {
        return cache_.getOrInsert(params_key, std::move(bundle));
    }

    /**
     * The bundle previously adopted under @p params_key, or nullptr if
     * it was never inserted or has been evicted under budget pressure
     * (the caller should treat that as "tenant must re-register").
     * A hit stamps LRU recency.
     */
    std::shared_ptr<const EvalKeys>
    lookup(const std::string &params_key)
    {
        return cache_.lookup(params_key);
    }

    /**
     * Cap the resident bytes of built bundles (EvalKeys::residentBytes
     * accounting); 0 restores the unbounded default. Applies
     * immediately: if built entries already exceed the new budget,
     * LRU unpinned ones are evicted now. The budget is best-effort
     * under pinning -- if every entry is pinned, the cache stays over
     * budget rather than invalidating live tenants.
     */
    void setBudgetBytes(uint64_t budget)
    {
        cache_.setBudgetBytes(budget);
    }

    /** Current counters (hits/misses/evictions/resident bytes). */
    CacheStats stats() const { return cache_.stats(); }

    /** Entries resident (built or being built). */
    size_t size() const { return cache_.size(); }

    /** Cold key generations performed so far (misses). */
    uint64_t keygenCount() const { return cache_.buildCount(); }

    /**
     * Drop every cached entry. Outstanding shared_ptrs stay valid;
     * later lookups regenerate. Intended for tests and memory-
     * pressure hooks, not steady-state serving.
     */
    void clear() { cache_.clear(); }

  private:
    EvalKeyCache cache_;
};

} // namespace strix

#endif // STRIX_TFHE_CONTEXT_CACHE_H
