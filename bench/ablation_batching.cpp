/**
 * @file
 * Ablation: two-level batching (the paper's central idea).
 *
 * Sweeps the core-level batch size m and compares against a
 * device-level-only configuration (m = 1, the GPU's limitation), for
 * sets I and IV. Shows where each configuration flips from memory-
 * to compute-bound and how much throughput core-level batching buys
 * at a fixed core count.
 */

#include <cstdio>

#include "common/table.h"
#include "strix/accelerator.h"

using namespace strix;

namespace {

void
sweepSet(const TfheParams &p)
{
    std::printf("-- parameter set %s --\n", p.name.c_str());
    StrixConfig cfg = StrixConfig::paperDefault();
    Hsc core(cfg, p);
    const double hz = cfg.clock_ghz * 1e9;
    const uint32_t cap = core.memory().coreBatch();

    TextTable t;
    t.header({"m (LWE/core)", "epoch batch", "PBS/s", "HBM util %",
              "bound"});
    for (uint32_t m = 1; m <= cap; m *= 2) {
        Cycle iter = core.iterationCycles(m);
        double tp = double(m) * cfg.tvlp * hz / (double(p.n) * iter);
        HscUtilization u = core.utilization(m);
        t.row({std::to_string(m), std::to_string(m * cfg.tvlp),
               TextTable::num(tp, 0), TextTable::num(100 * u.hbm, 0),
               core.memoryBound(m) ? "memory" : "compute"});
    }
    t.print();

    Cycle i1 = core.iterationCycles(1);
    Cycle ic = core.iterationCycles(cap);
    double gain = double(i1) * cap / double(ic);
    std::printf("Two-level batching gain at fixed TvLP=%u: %.2fx over "
                "device-level-only batching (m=1).\n\n",
                cfg.tvlp, gain);
}

} // namespace

/**
 * The same sweep on a bandwidth-starved platform (one DDR-class
 * 75 GB/s channel group instead of an HBM stack): here core-level
 * batching is the difference between a memory-bound and a
 * compute-bound accelerator, which is the regime the GPU analysis of
 * Sec. III lives in.
 */
void
sweepLowBandwidth(const TfheParams &p)
{
    std::printf("-- parameter set %s, 75 GB/s external memory --\n",
                p.name.c_str());
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.hbm_gbps = 75.0;
    Hsc core(cfg, p);
    const double hz = cfg.clock_ghz * 1e9;
    const uint32_t cap = core.memory().coreBatch();

    TextTable t;
    t.header({"m (LWE/core)", "PBS/s", "vs m=1", "bound"});
    double tp1 = 0.0;
    for (uint32_t m = 1; m <= cap; m *= 2) {
        Cycle iter = core.iterationCycles(m);
        double tp = double(m) * cfg.tvlp * hz / (double(p.n) * iter);
        if (m == 1)
            tp1 = tp;
        t.row({std::to_string(m), TextTable::num(tp, 0),
               TextTable::num(tp / tp1, 2) + "x",
               core.memoryBound(m) ? "memory" : "compute"});
    }
    t.print();
    std::printf("\n");
}

int
main()
{
    std::printf("=== Ablation: core-level batch size (two-level "
                "batching vs device-level only) ===\n\n");
    sweepSet(paramsSetI());
    sweepSet(paramsSetIV());
    sweepLowBandwidth(paramsSetI());

    std::printf("Reading: with m = 1 every blind-rotation iteration "
                "waits on the bootstrapping-key stream (the GPU's "
                "regime); streaming m ciphertexts through the "
                "pipelined core amortizes each key fetch until the "
                "cores are compute-bound -- the motivation for the "
                "HSC (Sec. III).\n");
    return 0;
}
