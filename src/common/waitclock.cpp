/**
 * @file
 * WaitableClock implementations.
 */

#include "common/waitclock.h"

#include <algorithm>

#include "common/logging.h"

namespace strix {

// ---------------------------------------------------------------- steady

uint64_t
SteadyWaitableClock::nowMicros() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

bool
SteadyWaitableClock::waitUntil(uint64_t deadline_us)
{
    // Wait on a bounded relative duration (re-waiting is the caller's
    // job on spurious returns, which the contract allows): adding a
    // "never"-sized deadline to a time_point would overflow the
    // steady_clock representation and busy-spin.
    const uint64_t now = nowMicros();
    uint64_t wait_us = deadline_us > now ? deadline_us - now : 0;
    wait_us = std::min<uint64_t>(wait_us, 3600u * 1000u * 1000u);
    MutexLock lock(m_);
    bool signaled =
        cv_.wait_for(lock, std::chrono::microseconds(wait_us), [&] {
            m_.assertHeld(); // the wait runs its predicate locked
            return signaled_;
        });
    signaled_ = false;
    return signaled;
}

void
SteadyWaitableClock::wait()
{
    MutexLock lock(m_);
    cv_.wait(lock, [&] {
        m_.assertHeld(); // the wait runs its predicate locked
        return signaled_;
    });
    signaled_ = false;
}

void
SteadyWaitableClock::signal()
{
    {
        MutexLock lock(m_);
        signaled_ = true;
    }
    cv_.notify_all();
}

// ---------------------------------------------------------------- manual

uint64_t
ManualWaitableClock::nowMicros() const
{
    MutexLock lock(m_);
    return now_us_;
}

bool
ManualWaitableClock::waitUntil(uint64_t deadline_us)
{
    MutexLock lock(m_);
    cv_.wait(lock, [&] {
        m_.assertHeld(); // the wait runs its predicate locked
        return signaled_ || now_us_ >= deadline_us;
    });
    bool signaled = signaled_;
    signaled_ = false;
    return signaled;
}

void
ManualWaitableClock::wait()
{
    MutexLock lock(m_);
    cv_.wait(lock, [&] {
        m_.assertHeld(); // the wait runs its predicate locked
        return signaled_;
    });
    signaled_ = false;
}

void
ManualWaitableClock::signal()
{
    {
        MutexLock lock(m_);
        signaled_ = true;
    }
    cv_.notify_all();
}

void
ManualWaitableClock::advance(uint64_t micros)
{
    {
        MutexLock lock(m_);
        now_us_ += micros;
    }
    cv_.notify_all();
}

void
ManualWaitableClock::set(uint64_t micros)
{
    {
        MutexLock lock(m_);
        panicIfNot(micros >= now_us_,
                   "ManualWaitableClock: time cannot go backwards");
        now_us_ = micros;
    }
    cv_.notify_all();
}

} // namespace strix
