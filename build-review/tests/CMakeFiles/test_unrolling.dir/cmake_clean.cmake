file(REMOVE_RECURSE
  "CMakeFiles/test_unrolling.dir/test_unrolling.cpp.o"
  "CMakeFiles/test_unrolling.dir/test_unrolling.cpp.o.d"
  "test_unrolling"
  "test_unrolling.pdb"
  "test_unrolling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
