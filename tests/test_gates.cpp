/**
 * @file
 * Bootstrapped gate tests: full truth tables for every gate with
 * exact (zero-noise) parameters, a noisy run at paper set I, and a
 * small homomorphic adder circuit as an integration test.
 */

#include <gtest/gtest.h>

#include "support/test_util.h"
#include "tfhe/context.h"
#include "tfhe/gates.h"

namespace strix {
namespace {

/** Fast zero-noise split keyset shared by the truth-table tests. */
test::TestKeys &
exactKeys()
{
    static test::TestKeys keys(test::fastParams(), test::kSeedGates);
    return keys;
}

using GateFn = LweCiphertext (*)(const ServerContext &,
                                 const LweCiphertext &,
                                 const LweCiphertext &);

struct GateCase
{
    const char *name;
    GateFn fn;
    bool truth[4]; // f(00), f(01), f(10), f(11)
};

class GateTruthTable : public ::testing::TestWithParam<GateCase>
{
};

TEST_P(GateTruthTable, MatchesTruthTable)
{
    const ClientKeyset &client = exactKeys().client;
    const ServerContext &server = exactKeys().server;
    const GateCase &gc = GetParam();
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            auto ca = client.encryptBit(a);
            auto cb = client.encryptBit(b);
            auto out = gc.fn(server, ca, cb);
            EXPECT_EQ(client.decryptBit(out), gc.truth[a * 2 + b])
                << gc.name << "(" << a << "," << b << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateTruthTable,
    ::testing::Values(
        GateCase{"NAND", gateNand, {true, true, true, false}},
        GateCase{"AND", gateAnd, {false, false, false, true}},
        GateCase{"OR", gateOr, {false, true, true, true}},
        GateCase{"NOR", gateNor, {true, false, false, false}},
        GateCase{"XOR", gateXor, {false, true, true, false}},
        GateCase{"XNOR", gateXnor, {true, false, false, true}},
        GateCase{"ANDNY", gateAndNY, {false, true, false, false}},
        GateCase{"ANDYN", gateAndYN, {false, false, true, false}},
        GateCase{"ORNY", gateOrNY, {true, true, false, true}},
        GateCase{"ORYN", gateOrYN, {true, false, true, true}}),
    [](const ::testing::TestParamInfo<GateCase> &info) {
        return info.param.name;
    });

TEST(Gates, NotIsFreeAndCorrect)
{
    // No server here on purpose: NOT is linear, no bootstrap at all.
    const ClientKeyset &client = exactKeys().client;
    for (int a = 0; a < 2; ++a) {
        auto ca = client.encryptBit(a);
        EXPECT_EQ(client.decryptBit(gateNot(ca)), !a);
    }
}

TEST(Gates, MuxSelects)
{
    const ClientKeyset &client = exactKeys().client;
    const ServerContext &server = exactKeys().server;
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b)
            for (int c = 0; c < 2; ++c) {
                auto out = gateMux(server, client.encryptBit(a),
                                   client.encryptBit(b), client.encryptBit(c));
                EXPECT_EQ(client.decryptBit(out), a ? b : c)
                    << a << b << c;
            }
}

TEST(Gates, DoubleNandIsAnd)
{
    const ClientKeyset &client = exactKeys().client;
    const ServerContext &server = exactKeys().server;
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b) {
            auto nand = gateNand(server, client.encryptBit(a),
                                 client.encryptBit(b));
            auto and2 = gateNand(server, nand, nand);
            EXPECT_EQ(client.decryptBit(and2), a && b);
        }
}

/** 2-bit ripple-carry adder built from bootstrapped gates. */
TEST(Gates, TwoBitRippleAdder)
{
    const ClientKeyset &client = exactKeys().client;
    const ServerContext &server = exactKeys().server;
    auto add2 = [&](int x, int y) {
        LweCiphertext x0 = client.encryptBit(x & 1);
        LweCiphertext x1 = client.encryptBit((x >> 1) & 1);
        LweCiphertext y0 = client.encryptBit(y & 1);
        LweCiphertext y1 = client.encryptBit((y >> 1) & 1);

        // bit 0
        auto s0 = gateXor(server, x0, y0);
        auto c0 = gateAnd(server, x0, y0);
        // bit 1
        auto t = gateXor(server, x1, y1);
        auto s1 = gateXor(server, t, c0);
        auto carry1 = gateAnd(server, x1, y1);
        auto carry2 = gateAnd(server, t, c0);
        auto c1 = gateOr(server, carry1, carry2);

        int result = client.decryptBit(s0) | (client.decryptBit(s1) << 1) |
                     (client.decryptBit(c1) << 2);
        return result;
    };

    for (int x = 0; x < 4; ++x)
        for (int y = 0; y < 4; ++y)
            EXPECT_EQ(add2(x, y), x + y) << x << "+" << y;
}

TEST(Gates, NoisyNandAtParameterSetI)
{
    // End-to-end with the paper's 110-bit parameters and real noise,
    // on the split API the library recommends.
    ClientKeyset client(paramsSetI(), 321);
    ServerContext server(client.evalKeys());
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b) {
            auto out = gateNand(server, client.encryptBit(a),
                                client.encryptBit(b));
            EXPECT_EQ(client.decryptBit(out), !(a && b)) << a << b;
        }
}

// The facade is deprecated but must keep working until removal; this
// is its one sanctioned in-tree use, covering the implicit
// ServerContext conversion and the encrypt/decrypt delegation.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Gates, DeprecatedTfheContextFacadeStillWorks)
{
    TfheContext ctx(test::fastParams(), test::kSeedGates);
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b) {
            auto out =
                gateNand(ctx, ctx.encryptBit(a), ctx.encryptBit(b));
            EXPECT_EQ(ctx.decryptBit(out), !(a && b)) << a << b;
        }
}
#pragma GCC diagnostic pop

TEST(Gates, StatsInstrumentationAccumulates)
{
    const ClientKeyset &client = exactKeys().client;
    const ServerContext &server = exactKeys().server;
    gateStatsReset();
    gateStatsEnable(true);
    auto out = gateNand(server, client.encryptBit(true), client.encryptBit(false));
    gateStatsEnable(false);
    EXPECT_TRUE(client.decryptBit(out));
    const GateStats &s = gateStats();
    EXPECT_GT(s.total(), 0.0);
    EXPECT_GT(s.fft_s, 0.0);
    EXPECT_GT(s.keyswitch_s, 0.0);
    // Blind rotation should dominate PBS time (paper: ~98%).
    EXPECT_GT(s.pbsTotal(), s.keyswitch_s * 0.5);
}

} // namespace
} // namespace strix
