/**
 * @file
 * EvalKeyCache implementation.
 */

#include "tfhe/eval_key_cache.h"

#include "common/logging.h"

namespace strix {

namespace {

/**
 * Namespace prefix for getOrInsert() entries. ContextCache's keygen
 * keys start with "n=" (its cacheKey), so prefixed external keys can
 * never collide with them no matter what params_key a caller picks.
 */
std::string
externalKey(const std::string &params_key)
{
    return "ext:" + params_key;
}

} // namespace

std::shared_ptr<EvalKeyCache::Entry>
EvalKeyCache::entryFor(const std::string &key)
{
    {
        SharedReaderLock read(index_mutex_);
        // Look up through a const alias: a reader lock only grants
        // shared access to entries_, and the analysis (correctly)
        // rejects the non-const find() overload under it.
        const auto &index = entries_;
        auto it = index.find(key);
        if (it != index.end())
            return it->second;
    }
    SharedWriterLock write(index_mutex_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted)
        it->second = std::make_shared<Entry>();
    return it->second;
}

void
EvalKeyCache::stampRecency(Entry &e)
{
    // Stamp recency from the global clock; an atomic per-entry stamp
    // keeps the hit path on the reader lock (entryFor) -- no list to
    // reorder, so no writer lock on hits.
    e.last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
}

EvalKeyCache::Built
EvalKeyCache::getOrBuild(const std::string &key, const Builder &build)
{
    std::shared_ptr<Entry> entry = entryFor(key);
    bool built_now = false;
    std::call_once(entry->once, [&] {
        Built b = build();
        panicIfNot(b.bundle != nullptr,
                   "EvalKeyCache: builder returned null bundle");
        entry->bundle = std::move(b.bundle);
        entry->owner = std::move(b.owner);
        // At-rest reference count: the entry's copy, plus the owner's
        // internal copy if it holds one (ContextCache's keyset does).
        // Anything above this later means an external caller is live.
        entry->pin_baseline =
            static_cast<uint32_t>(entry->bundle.use_count());
        // Release-store after the bundle write: the eviction scan
        // (which never passes through this call_once) acquires
        // `built` before touching `bundle`.
        entry->built.store(true, std::memory_order_release);
        builds_.fetch_add(1, std::memory_order_relaxed);
        built_now = true;
    });
    stampRecency(*entry);
    if (built_now)
        accountAndEvict(key, entry);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return Built{entry->bundle, entry->owner};
}

std::shared_ptr<const EvalKeys>
EvalKeyCache::getOrInsert(const std::string &params_key,
                          std::shared_ptr<const EvalKeys> bundle)
{
    panicIfNot(bundle != nullptr, "EvalKeyCache: null bundle insert");
    const std::string key = externalKey(params_key);
    std::shared_ptr<Entry> entry = entryFor(key);
    bool inserted_now = false;
    std::call_once(entry->once, [&] {
        entry->bundle = std::move(bundle);
        entry->pin_baseline = 1;
        // Release-store pairing with the eviction/lookup acquire, as
        // in getOrBuild.
        entry->built.store(true, std::memory_order_release);
        inserts_.fetch_add(1, std::memory_order_relaxed);
        inserted_now = true;
    });
    stampRecency(*entry);
    if (inserted_now)
        accountAndEvict(key, entry);
    else
        hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->bundle;
}

std::shared_ptr<const EvalKeys>
EvalKeyCache::lookup(const std::string &params_key)
{
    const std::string key = externalKey(params_key);
    SharedReaderLock read(index_mutex_);
    const auto &index = entries_;
    auto it = index.find(key);
    if (it == index.end())
        return nullptr; // never inserted, or evicted under pressure
    Entry &e = *it->second;
    if (!e.built.load(std::memory_order_acquire))
        return nullptr; // insert still racing in
    stampRecency(e);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return e.bundle;
}

void
EvalKeyCache::accountAndEvict(const std::string &key,
                              const std::shared_ptr<Entry> &entry)
{
    SharedWriterLock write(index_mutex_);
    // clear() may have raced the build: if the slot no longer holds
    // this entry, the caller keeps an unaccounted orphan bundle and
    // the cache owes nothing for it.
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second != entry)
        return;
    const uint64_t bytes = entry->bundle->residentBytes();
    entry->bytes.store(bytes, std::memory_order_relaxed);
    resident_bytes_ += bytes;
    evictIfOver(entry.get());
}

void
EvalKeyCache::evictIfOver(const Entry *exclude)
{
    while (budget_bytes_ != 0 && resident_bytes_ > budget_bytes_) {
        auto victim = entries_.end();
        uint64_t victim_tick = 0;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            Entry &e = *it->second;
            if (&e == exclude)
                continue; // the bundle being returned right now
            // Unbuilt entries hold no accounted bytes (build still
            // running or pending); acquire pairs with the
            // release-store in getOrBuild/getOrInsert.
            if (!e.built.load(std::memory_order_acquire))
                continue;
            // Pinned: some caller still holds the owner or the
            // bundle beyond the cache's at-rest references.
            // Evicting would not invalidate them (shared_ptr),
            // but an active tenant must stay resident.
            if (e.owner.use_count() > 1 ||
                e.bundle.use_count() > e.pin_baseline)
                continue;
            const uint64_t tick =
                e.last_used.load(std::memory_order_relaxed);
            if (victim == entries_.end() || tick < victim_tick) {
                victim = it;
                victim_tick = tick;
            }
        }
        if (victim == entries_.end())
            return; // everything left is pinned or building
        resident_bytes_ -=
            victim->second->bytes.load(std::memory_order_relaxed);
        entries_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
EvalKeyCache::setBudgetBytes(uint64_t budget)
{
    SharedWriterLock write(index_mutex_);
    budget_bytes_ = budget;
    evictIfOver(nullptr);
}

CacheStats
EvalKeyCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = builds_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    SharedReaderLock read(index_mutex_);
    s.resident_bytes = resident_bytes_;
    s.entries = entries_.size();
    s.budget_bytes = budget_bytes_;
    return s;
}

size_t
EvalKeyCache::size() const
{
    SharedReaderLock read(index_mutex_);
    return entries_.size();
}

void
EvalKeyCache::clear()
{
    SharedWriterLock write(index_mutex_);
    entries_.clear();
    resident_bytes_ = 0;
}

} // namespace strix
