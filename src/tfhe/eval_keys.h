/**
 * @file
 * EvalKeys: the public evaluation-key bundle a client ships to a
 * server.
 *
 * A TFHE deployment separates two roles (the paper's Fig. 1): the
 * *client* owns the secret keys and encrypts/decrypts; the *server*
 * evaluates PBS streams holding only public key material -- the
 * bootstrapping key (BSK) and the keyswitching key (KSK). EvalKeys is
 * exactly that server-side bundle: parameters + BSK + KSK, immutable
 * after construction, shared by `std::shared_ptr` so any number of
 * ServerContexts (and the ContextCache) reference one copy with zero
 * key duplication.
 *
 * EvalKeys contains no secret key and no RNG; code that only sees an
 * EvalKeys (or a ServerContext built on one) provably cannot decrypt.
 * Bundles serialize through the framing in serialize.h
 * (`serialize(os, keys)` / `deserializeEvalKeys(is)`), so a client
 * can export its evaluation keys to a remote server byte-exactly:
 * the frequency-domain BSK rows round-trip bit-for-bit, making
 * evaluation under a deserialized bundle bit-identical to evaluation
 * under the original.
 */

#ifndef STRIX_TFHE_EVAL_KEYS_H
#define STRIX_TFHE_EVAL_KEYS_H

#include <memory>
#include <optional>

#include "tfhe/bootstrap.h"
#include "tfhe/keyswitch.h"

namespace strix {

/**
 * Mask-stream root seeds recorded by seeded keygen
 * (BootstrappingKey::generateSeeded / KeySwitchKey::generateSeeded).
 * A bundle carrying these serializes as a compressed EVK2 frame (seed
 * + body components only, ~1/(k+1) of the expanded size); the seeds
 * are public material -- the masks they expand to ship in the clear
 * in the expanded format anyway.
 */
struct EvalKeySeeds
{
    uint64_t bsk_mask; //!< BSK mask stream root
    uint64_t ksk_mask; //!< KSK mask stream root
};

/**
 * Immutable public evaluation-key bundle: parameters, bootstrapping
 * key, keyswitching key. Thread-safe by construction (all accessors
 * are const and the state never changes after the constructor).
 */
class EvalKeys
{
  public:
    /**
     * Bundle @p bsk and @p ksk generated for @p params. Panics if the
     * key shapes do not match the parameter set (a mismatched bundle
     * would silently produce garbage ciphertexts).
     */
    EvalKeys(TfheParams params, BootstrappingKey bsk, KeySwitchKey ksk);

    /**
     * Same, for keys produced by the seeded keygen path: @p seeds are
     * the mask stream roots, kept so the bundle can serialize in the
     * compressed EVK2 format (serialize.h).
     */
    EvalKeys(TfheParams params, BootstrappingKey bsk, KeySwitchKey ksk,
             EvalKeySeeds seeds);

    const TfheParams &params() const { return params_; }
    const BootstrappingKey &bsk() const { return bsk_; }
    const KeySwitchKey &ksk() const { return ksk_; }

    /**
     * Mask seeds when this bundle came from seeded keygen (or an EVK2
     * frame); empty for keys built from expanded material (legacy
     * generate() or an EVK1 frame), which then only serialize in the
     * expanded format.
     */
    const std::optional<EvalKeySeeds> &seeds() const { return seeds_; }

    /** Approximate in-memory bundle size (time-domain equivalent). */
    uint64_t bytes() const
    {
        return params_.bskBytes() + params_.kskBytes();
    }

    /**
     * Actual resident size of the key material as stored: the
     * frequency-domain BSK rows (16 bytes per complex point -- 4x the
     * time-domain torus estimate of bytes()) plus the KSK rows. This
     * is what one cached tenant costs a server, and the unit
     * ContextCache budgets and accounts evictions in.
     */
    uint64_t residentBytes() const;

  private:
    TfheParams params_;
    BootstrappingKey bsk_;
    KeySwitchKey ksk_;
    std::optional<EvalKeySeeds> seeds_;
};

} // namespace strix

#endif // STRIX_TFHE_EVAL_KEYS_H
