// Fixture: poly/ including upward into tfhe/ breaks the layering DAG.
// test_lint.py asserts strix_lint rejects this include.
#include "tfhe/lwe.h"

namespace strix {
int
fixtureUpwardInclude()
{
    return 0;
}
} // namespace strix
