
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/complex_fft.cpp" "src/poly/CMakeFiles/strix_poly.dir/complex_fft.cpp.o" "gcc" "src/poly/CMakeFiles/strix_poly.dir/complex_fft.cpp.o.d"
  "/root/repo/src/poly/negacyclic_fft.cpp" "src/poly/CMakeFiles/strix_poly.dir/negacyclic_fft.cpp.o" "gcc" "src/poly/CMakeFiles/strix_poly.dir/negacyclic_fft.cpp.o.d"
  "/root/repo/src/poly/polynomial.cpp" "src/poly/CMakeFiles/strix_poly.dir/polynomial.cpp.o" "gcc" "src/poly/CMakeFiles/strix_poly.dir/polynomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/strix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
