/**
 * @file
 * Table V published constants.
 */

#include "baselines/reference_platforms.h"

namespace strix {

const std::vector<PlatformRow> &
tableVReferenceRows()
{
    static const std::vector<PlatformRow> rows{
        {"Concrete", "CPU", "I", 14.00, 70},
        {"Concrete", "CPU", "II", 19.00, 52},
        {"Concrete", "CPU", "III", 38.00, 26},
        {"Concrete", "CPU", "IV", 969.00, 1},
        {"NuFHE", "GPU", "I", 37.00, 2000},
        {"NuFHE", "GPU", "II", 700.00, 500},
        {"YKP", "FPGA", "I", 1.88, 2657},
        {"YKP", "FPGA", "III", 4.78, 836},
        {"XHEC", "FPGA", "I", std::nullopt, 2200},
        {"XHEC", "FPGA", "II", std::nullopt, 1800},
        {"Matcha", "ASIC", "I", 0.20, 10000},
    };
    return rows;
}

const std::vector<PlatformRow> &
tableVStrixPaperRows()
{
    static const std::vector<PlatformRow> rows{
        {"Strix", "ASIC", "I", 0.16, 74696},
        {"Strix", "ASIC", "II", 0.23, 39600},
        {"Strix", "ASIC", "III", 0.44, 21104},
        {"Strix", "ASIC", "IV", 3.31, 2368},
    };
    return rows;
}

} // namespace strix
