/**
 * @file
 * Design-space exploration with the Strix model: sweep the four
 * parallelism levels, the folding scheme, and the HBM bandwidth, and
 * print throughput / latency / area / efficiency for each candidate.
 * This is the kind of study Sec. IV-A (parallelism prioritization)
 * and Sec. VI-C (TvLP-vs-CLP) run to pick TvLP=8, CLP=4.
 *
 * Usage: design_explorer [param_set]   (I, II, III, IV; default IV)
 */

#include <cstdio>
#include <cstring>

#include "common/table.h"
#include "strix/accelerator.h"
#include "strix/area_model.h"

using namespace strix;

int
main(int argc, char **argv)
{
    const TfheParams *p = &paramsSetIV();
    if (argc > 1) {
        for (const auto &ps : paperParamSets())
            if (ps.name == argv[1])
                p = &ps;
    }
    std::printf("Design-space exploration on parameter set %s\n\n",
                p->name.c_str());

    TextTable t;
    t.header({"TvLP", "CLP", "fold", "PBS/s", "lat ms", "BW GB/s",
              "mm2", "W", "PBS/s/mm2", "bound"});

    double best_eff = 0;
    std::string best;
    for (uint32_t tvlp : {1u, 2u, 4u, 8u, 16u}) {
        for (uint32_t clp : {2u, 4u, 8u, 16u}) {
            for (bool fold : {true, false}) {
                StrixConfig cfg = StrixConfig::paperDefault();
                cfg.tvlp = tvlp;
                cfg.clp = clp;
                cfg.folding = fold;
                StrixAccelerator acc(cfg);
                PbsPerf perf = acc.evaluatePbs(*p);
                ChipBreakdown area = computeChipBreakdown(cfg, p->N);
                double eff =
                    perf.throughput_pbs_s / area.total.area_mm2;
                if (eff > best_eff &&
                    perf.required_bw_gbps < cfg.hbm_gbps) {
                    best_eff = eff;
                    best = std::to_string(tvlp) + "x" +
                           std::to_string(clp) +
                           (fold ? " folded" : " unfolded");
                }
                t.row({std::to_string(tvlp), std::to_string(clp),
                       fold ? "y" : "n",
                       TextTable::num(perf.throughput_pbs_s, 0),
                       TextTable::num(perf.latency_ms, 2),
                       TextTable::num(perf.required_bw_gbps, 0),
                       TextTable::num(area.total.area_mm2, 1),
                       TextTable::num(area.total.power_w, 1),
                       TextTable::num(eff, 1),
                       perf.memory_bound ? "mem" : "cmp"});
            }
        }
    }
    t.print();
    std::printf("\nBest PBS/s per mm2 within one HBM stack: %s "
                "(%.1f PBS/s/mm2)\n",
                best.c_str(), best_eff);
    std::printf("The paper's choice (TvLP=8, CLP=4, folded) trades a "
                "little efficiency for the highest absolute "
                "throughput that stays compute-bound at 300 GB/s.\n");
    return 0;
}
