/**
 * @file
 * TfheContext: full key material plus high-level encrypt/decrypt and
 * bootstrap entry points. This is the main user-facing handle of the
 * software TFHE library.
 *
 * Thread-safety contract
 * ----------------------
 * All const members (decrypt*, bootstrap, applyLut, bootstrapBatch,
 * applyLutBatch, accessors) are safe to call concurrently from any
 * number of threads on one shared context: key material is immutable
 * after construction, the FFT plan caches are prewarmed at
 * construction and lock-free to read, and every bootstrap carries its
 * own scratch buffers. The non-const members -- encryptBit/encryptInt
 * (they advance the context RNG), rng(), and setBatchThreads -- are
 * NOT thread-safe and must be externally serialized.
 */

#ifndef STRIX_TFHE_CONTEXT_H
#define STRIX_TFHE_CONTEXT_H

#include <memory>
#include <mutex>
#include <vector>

#include "common/parallel.h"
#include "tfhe/bootstrap.h"
#include "tfhe/keyswitch.h"

namespace strix {

/**
 * Key bundle for one TFHE instance: LWE key (dim n), GLWE key, the
 * extracted LWE key (dim k*N), bootstrapping key, keyswitching key.
 */
class TfheContext
{
  public:
    /**
     * Generate all keys for @p params deterministically from @p seed
     * and prewarm the FFT plan caches for this ring dimension. The
     * batch worker pool spins up lazily on the first batch call
     * (size: ThreadPool's default, overridable via STRIX_THREADS or
     * setBatchThreads), so sequential users never pay for idle
     * threads.
     */
    TfheContext(const TfheParams &params, uint64_t seed = 0xC0DEC0DEULL);

    const TfheParams &params() const { return params_; }
    const LweKey &lweKey() const { return lwe_key_; }
    const GlweKey &glweKey() const { return glwe_key_; }
    const LweKey &extractedKey() const { return extracted_key_; }
    const BootstrappingKey &bsk() const { return bsk_; }
    const KeySwitchKey &ksk() const { return ksk_; }
    Rng &rng() { return rng_; }

    /** Encrypt a boolean as mu = +-1/8 under the dim-n key. */
    LweCiphertext encryptBit(bool bit);

    /** Decrypt a boolean (sign of the phase). */
    bool decryptBit(const LweCiphertext &ct) const;

    /**
     * Encrypt an integer in [0, msg_space) with centered LUT encoding
     * (padding bit) under the dim-n key.
     */
    LweCiphertext encryptInt(int64_t m, uint64_t msg_space);

    /** Decrypt an integer with centered LUT encoding. */
    int64_t decryptInt(const LweCiphertext &ct, uint64_t msg_space) const;

    /**
     * Bootstrap @p ct against @p test_vector and keyswitch back to
     * dimension n -- the PBS+KS node every workload graph is made of.
     */
    LweCiphertext bootstrap(const LweCiphertext &ct,
                            const TorusPolynomial &test_vector) const;

    /**
     * Programmable bootstrapping of an integer function f over
     * [0, msg_space): returns an encryption of f(m) (centered
     * encoding), keyswitched to dimension n.
     */
    LweCiphertext applyLut(const LweCiphertext &ct, uint64_t msg_space,
                           const std::function<int64_t(int64_t)> &f) const;

    /**
     * Batched PBS+KS: bootstrap @p count ciphertexts against one
     * shared test vector, parallelized across ciphertexts on the
     * context's worker pool with one scratch buffer per worker.
     * out[i] always corresponds to cts[i] and is bit-identical to
     * bootstrap(cts[i], test_vector) at any thread count -- the
     * software seam for Strix-style ciphertext batching.
     */
    std::vector<LweCiphertext>
    bootstrapBatch(const LweCiphertext *cts, size_t count,
                   const TorusPolynomial &test_vector) const;

    /** Convenience overload over a vector batch. */
    std::vector<LweCiphertext>
    bootstrapBatch(const std::vector<LweCiphertext> &cts,
                   const TorusPolynomial &test_vector) const;

    /**
     * Batched applyLut: builds the test vector for @p f once and
     * evaluates it over the whole batch via bootstrapBatch.
     */
    std::vector<LweCiphertext>
    applyLutBatch(const std::vector<LweCiphertext> &cts, uint64_t msg_space,
                  const std::function<int64_t(int64_t)> &f) const;

    /**
     * Resize the batch worker pool to @p threads workers (0 restores
     * the default). Must not race with in-flight batch calls.
     */
    void setBatchThreads(unsigned threads);

    /**
     * Batch worker count the next batch call will use (>= 1,
     * including the caller). Pure query: does not spin up the pool.
     */
    unsigned batchThreads() const
    {
        return batch_threads_ != 0 ? batch_threads_
                                   : ThreadPool::defaultThreadCount();
    }

  private:
    TfheParams params_;

    /**
     * Populates the FFT plan caches for this ring dimension. Members
     * initialize in declaration order, so the caches are published
     * before any key material is generated and every later lookup --
     * including concurrent bootstraps -- is a lock-free read.
     */
    struct FftPrewarm
    {
        explicit FftPrewarm(const TfheParams &p);
    };
    FftPrewarm fft_prewarm_;

    Rng rng_;
    LweKey lwe_key_;
    GlweKey glwe_key_;
    LweKey extracted_key_;
    BootstrappingKey bsk_;
    KeySwitchKey ksk_;

    /**
     * Lazily created so the dominant sequential use case never spawns
     * idle workers; call_once makes the first concurrent batch calls
     * safe. setBatchThreads records the requested size (0 = default)
     * and replaces an already-built pool outside the once path
     * (documented as not racing with batch calls).
     */
    ThreadPool &pool() const;
    unsigned batch_threads_ = 0;
    mutable std::once_flag pool_once_;
    mutable std::unique_ptr<ThreadPool> pool_;
};

} // namespace strix

#endif // STRIX_TFHE_CONTEXT_H
