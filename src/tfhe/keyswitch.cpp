/**
 * @file
 * Keyswitching implementation.
 */

#include "tfhe/keyswitch.h"

#include "common/logging.h"

namespace strix {

KeySwitchKey
KeySwitchKey::generate(const LweKey &from, const LweKey &to,
                       const TfheParams &params, Rng &rng)
{
    KeySwitchKey ksk;
    ksk.in_dim_ = from.dim();
    ksk.out_dim_ = to.dim();
    ksk.g_ = GadgetParams{params.ks_base_bits, params.l_ksk};
    ksk.rows_.reserve(size_t(from.dim()) * params.l_ksk);
    for (uint32_t i = 0; i < from.dim(); ++i) {
        for (uint32_t j = 1; j <= params.l_ksk; ++j) {
            Torus32 msg = static_cast<uint32_t>(from.bit(i)) *
                          ksk.g_.levelScale(j);
            ksk.rows_.push_back(
                lweEncrypt(to, msg, params.lwe_noise, rng));
        }
    }
    return ksk;
}

KeySwitchKey
KeySwitchKey::generateSeeded(const LweKey &from, const LweKey &to,
                             const TfheParams &params,
                             uint64_t mask_seed, Rng &noise_rng)
{
    KeySwitchKey ksk;
    ksk.in_dim_ = from.dim();
    ksk.out_dim_ = to.dim();
    ksk.g_ = GadgetParams{params.ks_base_bits, params.l_ksk};
    const Rng mask_root(mask_seed);
    ksk.rows_.reserve(size_t(from.dim()) * params.l_ksk);
    for (uint32_t i = 0; i < from.dim(); ++i) {
        for (uint32_t j = 1; j <= params.l_ksk; ++j) {
            Torus32 msg = static_cast<uint32_t>(from.bit(i)) *
                          ksk.g_.levelScale(j);
            Rng mask_rng = mask_root.fork(
                uint64_t(i) * params.l_ksk + (j - 1));
            ksk.rows_.push_back(lweEncryptSeeded(
                to, msg, params.lwe_noise, mask_rng, noise_rng));
        }
    }
    return ksk;
}

KeySwitchKey
KeySwitchKey::fromSeededBodies(uint32_t in_dim, uint32_t out_dim,
                               const GadgetParams &g, uint64_t mask_seed,
                               const std::vector<Torus32> &bodies)
{
    panicIfNot(bodies.size() == size_t(in_dim) * g.levels,
               "ksk fromSeededBodies: body count mismatch");
    const Rng mask_root(mask_seed);
    std::vector<LweCiphertext> rows;
    rows.reserve(bodies.size());
    for (uint64_t r = 0; r < bodies.size(); ++r) {
        LweCiphertext ct(out_dim);
        // Same fork id as generateSeeded (i*levels + level == r) and
        // the same mask draw order as lweEncryptSeeded.
        Rng mask_rng = mask_root.fork(r);
        lweFillMask(ct, mask_rng);
        ct.b() = bodies[r];
        rows.push_back(std::move(ct));
    }
    return fromRows(in_dim, out_dim, g, std::move(rows));
}

KeySwitchKey
KeySwitchKey::fromRows(uint32_t in_dim, uint32_t out_dim,
                       const GadgetParams &g,
                       std::vector<LweCiphertext> rows)
{
    panicIfNot(rows.size() == size_t(in_dim) * g.levels,
               "ksk fromRows: row count mismatch");
    KeySwitchKey ksk;
    ksk.in_dim_ = in_dim;
    ksk.out_dim_ = out_dim;
    ksk.g_ = g;
    ksk.rows_ = std::move(rows);
    return ksk;
}

LweCiphertext
keySwitch(const LweCiphertext &ct, const KeySwitchKey &ksk)
{
    panicIfNot(ct.dim() == ksk.inDim(), "keySwitch: dim mismatch");
    const GadgetParams &g = ksk.gadget();

    // o[m] = c[n] (Algorithm 2, line 2), then subtract the decomposed
    // mask against the key rows.
    LweCiphertext out = LweCiphertext::trivial(ksk.outDim(), ct.b());
    std::vector<int32_t> digits(g.levels);
    LweCiphertext scaled(ksk.outDim());
    for (uint32_t i = 0; i < ksk.inDim(); ++i) {
        gadgetDecompose(digits.data(), ct.a(i), g);
        for (uint32_t j = 0; j < g.levels; ++j) {
            if (digits[j] == 0)
                continue;
            scaled = ksk.row(i, j);
            scaled.scalarMulAssign(digits[j]);
            out.subAssign(scaled);
        }
    }
    return out;
}

} // namespace strix
