/**
 * @file
 * Epoch-scheduler tests: interval invariants, keyswitch overlap,
 * consistency with the accelerator's batch model, and trace output.
 */

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "strix/accelerator.h"
#include "strix/memory_system.h"
#include "strix/scheduler.h"

namespace strix {
namespace {

TEST(Scheduler, EmptyBatch)
{
    EpochScheduler s(StrixConfig::paperDefault());
    EXPECT_TRUE(s.schedule(paramsSetI(), 0).empty());
}

TEST(Scheduler, SingleEpochShape)
{
    EpochScheduler s(StrixConfig::paperDefault());
    auto epochs = s.schedule(paramsSetI(), 100);
    ASSERT_EQ(epochs.size(), 1u);
    const auto &e = epochs[0];
    EXPECT_EQ(e.lwes, 100u);
    EXPECT_EQ(e.core_batch, 13u); // ceil(100/8)
    EXPECT_EQ(e.br_start, 0u);
    EXPECT_GT(e.br_end, e.br_start);
    EXPECT_EQ(e.ks_start, e.br_end); // KS right after BR
    EXPECT_GT(e.ks_end, e.ks_start);
    EXPECT_TRUE(e.ks_exposed); // final epoch's KS is always exposed
}

TEST(Scheduler, BlindRotationsRunBackToBack)
{
    EpochScheduler s(StrixConfig::paperDefault());
    auto epochs = s.schedule(paramsSetI(), 1000);
    ASSERT_GE(epochs.size(), 2u);
    for (size_t e = 1; e < epochs.size(); ++e) {
        // With KS shorter than BR (true at set I full batches), the
        // PBS clusters never idle.
        EXPECT_EQ(epochs[e].br_start, epochs[e - 1].br_end);
    }
}

TEST(Scheduler, KeyswitchOverlapsNextBlindRotation)
{
    EpochScheduler s(StrixConfig::paperDefault());
    auto epochs = s.schedule(paramsSetI(), 1000);
    ASSERT_GE(epochs.size(), 2u);
    for (size_t e = 0; e + 1 < epochs.size(); ++e) {
        // KS of epoch e runs while BR of e+1 runs.
        EXPECT_LT(epochs[e].ks_start, epochs[e + 1].br_end);
        EXPECT_GE(epochs[e].ks_start, epochs[e + 1].br_start);
        // Hidden (not exposed) for set I full batches.
        if (e + 1 < epochs.size() - 1) {
            EXPECT_FALSE(epochs[e].ks_exposed) << e;
        }
    }
}

TEST(Scheduler, MakespanMatchesAcceleratorModel)
{
    StrixAccelerator acc;
    EpochScheduler s(StrixConfig::paperDefault());
    for (uint64_t lwes : {1ull, 255ull, 256ull, 257ull, 10000ull}) {
        auto epochs = s.schedule(paramsSetI(), lwes);
        double span_s = double(EpochScheduler::makespan(epochs)) /
                        (1.2e9);
        BatchPerf perf = acc.runBatch(paramsSetI(), lwes);
        EXPECT_NEAR(perf.seconds, span_s, 1e-12) << lwes;
        EXPECT_EQ(perf.epochs, epochs.size()) << lwes;
    }
}

TEST(Scheduler, KsBoundWorkloadSerializesOnKs)
{
    // Shrink the KS cluster until keyswitching dominates: the PBS
    // cluster must then wait (br_start > previous br_end).
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.ks_clp = 1;
    cfg.ks_colp = 1;
    EpochScheduler s(cfg);
    auto epochs = s.schedule(paramsSetI(), 2000);
    ASSERT_GE(epochs.size(), 3u);
    bool serialized = false;
    for (size_t e = 1; e < epochs.size(); ++e)
        serialized |= epochs[e].br_start > epochs[e - 1].br_end;
    EXPECT_TRUE(serialized);
    // And mid-schedule KS exposures are flagged.
    bool exposed_mid = false;
    for (size_t e = 0; e + 1 < epochs.size(); ++e)
        exposed_mid |= epochs[e].ks_exposed;
    EXPECT_TRUE(exposed_mid);
}

TEST(Scheduler, TraceHasTwoRows)
{
    EpochScheduler s(StrixConfig::paperDefault());
    auto epochs = s.schedule(paramsSetI(), 600);
    GanttTrace trace = EpochScheduler::toTrace(epochs);
    ASSERT_EQ(trace.rows().size(), 2u);
    EXPECT_EQ(trace.rows()[0].name(), "PBS clusters");
    EXPECT_FALSE(trace.rows()[0].hasOverlap());
    EXPECT_FALSE(trace.rows()[1].hasOverlap());
    EXPECT_EQ(trace.endCycle(), EpochScheduler::makespan(epochs));
}

TEST(Scheduler, ZeroTvlpPanicsInsteadOfDividingByZero)
{
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.tvlp = 0; // used to flow straight into a division by zero
    EpochScheduler s(cfg);
    EXPECT_DEATH(s.schedule(paramsSetI(), 100), "tvlp must be >= 1");
}

TEST(Scheduler, NearMaxLweCountPanicsInsteadOfEmptySchedule)
{
    // Regression: the textbook ceil division (a + b - 1) / b wraps for
    // num_lwes within epoch_batch of 2^64, so the scheduler silently
    // returned an *empty* schedule -- every LWE dropped. The count is
    // now computed overflow-free and absurd schedules fail loudly.
    EpochScheduler s(StrixConfig::paperDefault());
    EXPECT_DEATH(
        s.schedule(paramsSetI(), std::numeric_limits<uint64_t>::max()),
        "epoch count overflows");
}

TEST(Scheduler, EpochsBeyondUint32LwesScheduleExactly)
{
    // Blow the local scratchpad up until one epoch holds more LWEs
    // than fit a uint32: the per-epoch bookkeeping (lwes is uint64,
    // core_batch a checked uint32) must still account for every LWE.
    StrixConfig cfg = StrixConfig::paperDefault();
    cfg.local_scratch_kb = 1.1e10; // coreBatch ~ 2^29 at set I
    EpochScheduler s(cfg);

    const uint64_t epoch_batch =
        uint64_t(MemorySystem(cfg, paramsSetI()).coreBatch()) * cfg.tvlp;
    ASSERT_GT(epoch_batch, uint64_t(std::numeric_limits<uint32_t>::max()));

    const uint64_t num_lwes = 3 * epoch_batch + 7;
    auto epochs = s.schedule(paramsSetI(), num_lwes);
    ASSERT_EQ(epochs.size(), 4u);
    uint64_t total = 0;
    for (const auto &e : epochs) {
        total += e.lwes;
        EXPECT_EQ(e.core_batch, e.lwes / cfg.tvlp +
                                    (e.lwes % cfg.tvlp != 0 ? 1 : 0))
            << "epoch " << e.index;
    }
    EXPECT_EQ(total, num_lwes); // nothing dropped, nothing duplicated
    EXPECT_GT(epochs[0].lwes,
              uint64_t(std::numeric_limits<uint32_t>::max()));
}

TEST(Scheduler, PartialLastEpochIsSmaller)
{
    EpochScheduler s(StrixConfig::paperDefault());
    auto epochs = s.schedule(paramsSetI(), 257); // 256 + 1
    ASSERT_EQ(epochs.size(), 2u);
    EXPECT_EQ(epochs[0].lwes, 256u);
    EXPECT_EQ(epochs[1].lwes, 1u);
    EXPECT_LT(epochs[1].br_end - epochs[1].br_start,
              epochs[0].br_end - epochs[0].br_start);
}

} // namespace
} // namespace strix
