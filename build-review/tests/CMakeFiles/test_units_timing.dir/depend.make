# Empty dependencies file for test_units_timing.
# This may be replaced when dependencies are built.
