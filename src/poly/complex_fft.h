/**
 * @file
 * Iterative radix-2 complex FFT with a precomputed plan.
 *
 * This mirrors the structure of the hardware pipelined-FFT in the
 * paper (Fig. 5): log2(M) butterfly stages with twiddle ROMs; the
 * software version applies the same dataflow sequentially. Plans are
 * cached per size.
 */

#ifndef STRIX_POLY_COMPLEX_FFT_H
#define STRIX_POLY_COMPLEX_FFT_H

#include <complex>
#include <cstddef>
#include <vector>

namespace strix {

using Cplx = std::complex<double>;

/**
 * FFT plan for a fixed power-of-two size M: bit-reversal permutation
 * and per-stage twiddle factors.
 */
class FftPlan
{
  public:
    /** Build a plan for size @p m (power of two, >= 2). */
    explicit FftPlan(size_t m);

    size_t size() const { return m_; }

    /**
     * In-place forward transform with positive exponent convention:
     * X_k = sum_j x_j * exp(+2*pi*i*j*k / M).
     */
    void forward(Cplx *data) const;

    /**
     * In-place inverse transform (negative exponent), scaled by 1/M:
     * x_j = (1/M) sum_k X_k * exp(-2*pi*i*j*k / M).
     */
    void inverse(Cplx *data) const;

    /** Obtain a cached plan for size @p m (thread-unsafe cache). */
    static const FftPlan &get(size_t m);

  private:
    void transform(Cplx *data, bool positive_exponent) const;

    size_t m_;
    std::vector<size_t> bit_reverse_;
    /** Twiddles w^j = exp(+2*pi*i*j/M) for j in [0, M/2). */
    std::vector<Cplx> twiddles_;
};

} // namespace strix

#endif // STRIX_POLY_COMPLEX_FFT_H
