// Fixture: a tfhe-layer header a lower layer must not reach.
#ifndef FIXTURE_TFHE_LWE_H
#define FIXTURE_TFHE_LWE_H

namespace strix {
struct LweCiphertext
{
};
} // namespace strix

#endif
