/**
 * @file
 * Minimal gem5-style status/error reporting helpers.
 *
 * fatal(): user-caused error (bad configuration), exits cleanly.
 * panic(): internal invariant violation, aborts.
 * warn()/inform(): non-fatal status messages on stderr.
 */

#ifndef STRIX_COMMON_LOGGING_H
#define STRIX_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace strix {

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless @p cond holds. */
inline void
panicIfNot(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace strix

#endif // STRIX_COMMON_LOGGING_H
