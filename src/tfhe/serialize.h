/**
 * @file
 * Binary serialization for TFHE material.
 *
 * A TFHE deployment is client/server: the client keeps the secret
 * keys and ships ciphertexts plus the (public) bootstrapping and
 * keyswitching keys to the server. This module provides a compact,
 * versioned, little-endian binary format for every transferable
 * object. Each object is framed with a type tag so a stream can be
 * validated on read.
 */

#ifndef STRIX_TFHE_SERIALIZE_H
#define STRIX_TFHE_SERIALIZE_H

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "tfhe/eval_keys.h"
#include "tfhe/integer.h"
#include "tfhe/keyswitch.h"
#include "tfhe/params.h"

namespace strix {

/** Format version written into every frame. */
inline constexpr uint32_t kSerializeVersion = 1;

/** Frame type tags. */
enum class SerialTag : uint32_t
{
    Params = 0x50415230,        // "PAR0"
    LweKey = 0x4C4B4559,        // "LKEY"
    LweCiphertext = 0x4C435431, // "LCT1"
    GlweKey = 0x474B4559,       // "GKEY"
    TorusPoly = 0x54504C59,     // "TPLY"
    KeySwitchKey = 0x4B534B31,  // "KSK1"
    EncryptedUint = 0x45554931, // "EUI1"
    BootstrapKey = 0x42534B31,  // "BSK1"
    EvalKeys = 0x45564B31,      // "EVK1"
};

// --- writers ---------------------------------------------------------
void serialize(std::ostream &os, const TfheParams &p);
void serialize(std::ostream &os, const LweKey &key);
void serialize(std::ostream &os, const LweCiphertext &ct);
void serialize(std::ostream &os, const GlweKey &key);
void serialize(std::ostream &os, const TorusPolynomial &poly);
void serialize(std::ostream &os, const KeySwitchKey &ksk);
void serialize(std::ostream &os, const EncryptedUint &x);
void serialize(std::ostream &os, const BootstrappingKey &bsk);
/** One frame bundling params + BSK + KSK: the shippable server keyset. */
void serialize(std::ostream &os, const EvalKeys &keys);

// --- readers (throw std::runtime_error on malformed input) -----------
TfheParams deserializeParams(std::istream &is);
LweKey deserializeLweKey(std::istream &is);
LweCiphertext deserializeLweCiphertext(std::istream &is);
GlweKey deserializeGlweKey(std::istream &is);
TorusPolynomial deserializeTorusPolynomial(std::istream &is);
KeySwitchKey deserializeKeySwitchKey(std::istream &is);
EncryptedUint deserializeEncryptedUint(std::istream &is);
BootstrappingKey deserializeBootstrappingKey(std::istream &is);
/**
 * Read an EvalKeys bundle, cross-validating the BSK and KSK shapes
 * against the embedded parameter frame (mismatches throw rather than
 * yielding a bundle that silently evaluates garbage). Returned behind
 * shared_ptr, ready to hand to any number of ServerContexts. The
 * frequency-domain BSK rows round-trip bit-exactly, so evaluation
 * under the deserialized bundle is bit-identical to the original.
 */
std::shared_ptr<const EvalKeys> deserializeEvalKeys(std::istream &is);

} // namespace strix

#endif // STRIX_TFHE_SERIALIZE_H
